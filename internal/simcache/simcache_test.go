package simcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// payload is a stand-in for sim.Result: nested structs, slices, exact
// floats, and signed/unsigned scalars.
type payload struct {
	Name    string
	Time    int64
	Energy  float64
	Series  []point
	Threads []string
}

type point struct {
	At    int64
	Value float64
}

func testPayload() payload {
	return payload{
		Name:   "xalan",
		Time:   123_456_789_012,
		Energy: 0.1 + 0.2, // a value that JSON would not round-trip textually
		Series: []point{{1, 1.5}, {2, 2.25e-17}, {3, -0}},
		Threads: []string{
			"main", "worker-0", "worker-1",
		},
	}
}

func open(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, 0)
	key, err := Key("truth", testPayload())
	if err != nil {
		t.Fatal(err)
	}
	want := testPayload()
	if err := s.Put(key, &want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Get(key, &got) {
		t.Fatal("fresh entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the value:\ngot  %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 put", st)
	}
}

func TestAbsentKeyMisses(t *testing.T) {
	s := open(t, 0)
	var got payload
	if s.Get("0000000000000000000000000000000000000000000000000000000000000000", &got) {
		t.Fatal("absent key hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

func TestKeyDiscriminates(t *testing.T) {
	a, _ := Key("truth", testPayload())
	b, _ := Key("truth", testPayload())
	if a != b {
		t.Error("identical inputs produced different keys")
	}
	mutated := testPayload()
	mutated.Time++
	c, _ := Key("truth", mutated)
	if a == c {
		t.Error("different inputs produced the same key")
	}
	d, _ := Key("chip", testPayload())
	if a == d {
		t.Error("different run kinds produced the same key")
	}
}

func TestFingerprintTracksSchema(t *testing.T) {
	type v1 struct{ A int64 }
	type v2 struct{ A, B int64 }
	type v1renamed struct{ B int64 }
	fp1, fp2, fp3 := Fingerprint(v1{}), Fingerprint(v2{}), Fingerprint(v1renamed{})
	if fp1 == fp2 {
		t.Error("added field did not change the fingerprint")
	}
	if fp1 == fp3 {
		t.Error("renamed field did not change the fingerprint")
	}
	if Fingerprint(v1{}) != fp1 {
		t.Error("fingerprint not deterministic")
	}
	// Recursive types must terminate.
	type node struct {
		Next *node
		V    int
	}
	if Fingerprint(node{}) == "" {
		t.Error("recursive type produced empty fingerprint")
	}
}

// corrupt flips one byte at off (negative: from the end) in the sole cache
// entry under dir.
func corruptEntry(t *testing.T, dir string, off int64, mutate func([]byte)) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var path string
	for _, de := range des {
		if filepath.Ext(de.Name()) == entryExt {
			path = filepath.Join(dir, de.Name())
		}
	}
	if path == "" {
		t.Fatal("no cache entry found")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(raw))
	}
	if mutate != nil {
		mutate(raw)
	} else {
		raw[off] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptionDegradesToMiss(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, dir string)
	}{
		{"payload-bitflip", func(t *testing.T, dir string) {
			corruptEntry(t, dir, -1, nil)
		}},
		{"header-magic", func(t *testing.T, dir string) {
			corruptEntry(t, dir, 0, nil)
		}},
		{"version-skew", func(t *testing.T, dir string) {
			corruptEntry(t, dir, 0, func(raw []byte) { raw[4]++ })
		}},
		{"truncated-payload", func(t *testing.T, dir string) {
			path := corruptEntry(t, dir, 0, func([]byte) {})
			raw, _ := os.ReadFile(path)
			os.WriteFile(path, raw[:len(raw)/2], 0o644)
		}},
		{"truncated-header", func(t *testing.T, dir string) {
			path := corruptEntry(t, dir, 0, func([]byte) {})
			os.WriteFile(path, []byte{'D'}, 0o644)
		}},
		{"empty-file", func(t *testing.T, dir string) {
			path := corruptEntry(t, dir, 0, func([]byte) {})
			os.WriteFile(path, nil, 0o644)
		}},
		{"garbage-gob", func(t *testing.T, dir string) {
			// Valid framing around a payload gob cannot decode: rewrite
			// the entry from whole cloth with a checksummed junk payload.
			path := corruptEntry(t, dir, 0, func([]byte) {})
			s, _ := Open(dir, 0)
			if err := s.Put(filepath.Base(path[:len(path)-len(entryExt)]), "not a payload struct"); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, 0)
			key, _ := Key("truth", tc.name)
			if err := s.Put(key, testPayload()); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, s.Dir())
			var got payload
			if s.Get(key, &got) {
				t.Fatal("damaged entry served as a hit")
			}
			// The damaged entry is purged, and a re-Put re-serves.
			if err := s.Put(key, testPayload()); err != nil {
				t.Fatal(err)
			}
			if !s.Get(key, &got) || !reflect.DeepEqual(got, testPayload()) {
				t.Fatal("store did not recover after re-Put")
			}
		})
	}
}

func TestDamagedEntryPurged(t *testing.T) {
	s := open(t, 0)
	key, _ := Key("x")
	if err := s.Put(key, testPayload()); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s.Dir(), -1, nil)
	var got payload
	s.Get(key, &got)
	if entries, _, _ := s.Size(); entries != 0 {
		t.Errorf("damaged entry still on disk (%d entries)", entries)
	}
}

func TestLRUEviction(t *testing.T) {
	// Entries are ~a few hundred bytes; cap the store so only a couple
	// fit, then verify oldest-mtime entries go first and recently-read
	// entries survive.
	s := open(t, 0)
	var keys []string
	for i := 0; i < 4; i++ {
		k, _ := Key("entry", i)
		keys = append(keys, k)
		if err := s.Put(k, testPayload()); err != nil {
			t.Fatal(err)
		}
		// Pin distinct, increasing mtimes so LRU order is unambiguous
		// regardless of filesystem timestamp granularity.
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	_, total, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	perEntry := total / 4

	// Touch the oldest entry via Get: it becomes the most recent.
	var got payload
	if !s.Get(keys[0], &got) {
		t.Fatal("entry 0 missed before eviction")
	}

	// Shrink the cap to two entries and trigger eviction with a Put.
	s.maxBytes = perEntry*3 + perEntry/2
	k, _ := Key("entry", 99)
	if err := s.Put(k, testPayload()); err != nil {
		t.Fatal(err)
	}

	for i, want := range map[int]bool{0: true, 1: false, 2: false, 3: true} {
		if got := s.Get(keys[i], &payload{}); got != want {
			t.Errorf("after eviction, entry %d present=%v, want %v", i, got, want)
		}
	}
	if s.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key, _ := Key("concurrent", i%10)
				want := testPayload()
				want.Time = int64(i % 10)
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				var got payload
				if s.Get(key, &got) && got.Name != want.Name {
					t.Errorf("goroutine %d read torn entry %+v", g, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", 0); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}

func TestIgnoresForeignFiles(t *testing.T) {
	s := open(t, 0)
	if err := os.WriteFile(filepath.Join(s.Dir(), "README.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	key, _ := Key("x")
	if err := s.Put(key, testPayload()); err != nil {
		t.Fatal(err)
	}
	entries, _, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 1 {
		t.Errorf("Size counted foreign files: %d entries", entries)
	}
	// Eviction must not delete foreign files either.
	s.maxBytes = 1
	k2, _ := Key("y")
	s.Put(k2, testPayload())
	if _, err := os.Stat(filepath.Join(s.Dir(), "README.txt")); err != nil {
		t.Errorf("foreign file removed by eviction: %v", err)
	}
}

func TestKeyRejectsUnencodable(t *testing.T) {
	if _, err := Key(func() {}); err == nil {
		t.Error("Key(func) succeeded")
	}
}

func ExampleStore() {
	dir, _ := os.MkdirTemp("", "simcache-example-")
	defer os.RemoveAll(dir)
	s, _ := Open(dir, 0)
	key, _ := Key(Fingerprint(payload{}), "truth", "xalan", 1000)
	s.Put(key, payload{Name: "xalan", Time: 42})
	var out payload
	fmt.Println(s.Get(key, &out), out.Time)
	// Output: true 42
}

// meta is a stand-in for a surrogate training manifest.
type meta struct {
	Kind  string
	Bench string
	MHz   int64
}

func TestMetaRoundTrip(t *testing.T) {
	s := open(t, 0)
	key, _ := Key("truth", 1)
	if s.HasMeta(key) || s.GetMeta(key, &meta{}) {
		t.Fatal("meta served before PutMeta")
	}
	want := meta{Kind: "truth", Bench: "xalan", MHz: 1000}
	if err := s.PutMeta(key, want); err != nil {
		t.Fatal(err)
	}
	if !s.HasMeta(key) {
		t.Fatal("HasMeta false after PutMeta")
	}
	var got meta
	if !s.GetMeta(key, &got) {
		t.Fatal("GetMeta missed after PutMeta")
	}
	if got != want {
		t.Fatalf("meta round trip: got %+v, want %+v", got, want)
	}
}

func TestMetaCorruptionPurged(t *testing.T) {
	corruptions := map[string]func(raw []byte) []byte{
		"truncated": func(raw []byte) []byte { return raw[:len(raw)-3] },
		"badmagic":  func(raw []byte) []byte { raw[0] ^= 0xff; return raw },
		"badver":    func(raw []byte) []byte { raw[5] ^= 0x01; return raw },
		"flipped":   func(raw []byte) []byte { raw[len(raw)-1] ^= 0x01; return raw },
		"notjson":   func(raw []byte) []byte { return frame([]byte("{oops")) },
		"header":    func(raw []byte) []byte { return raw[:5] },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := open(t, 0)
			key, _ := Key("truth", name)
			if err := s.PutMeta(key, meta{Kind: "truth"}); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.metaPath(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.metaPath(key), corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if s.GetMeta(key, &meta{}) {
				t.Fatal("corrupted meta served")
			}
			if _, err := os.Stat(s.metaPath(key)); !os.IsNotExist(err) {
				t.Error("corrupted meta not purged")
			}
		})
	}
}

// frame wraps payload in valid entry framing, for tests that need a
// well-framed but semantically broken file.
func frame(payload []byte) []byte {
	s := &Store{}
	dir, err := os.MkdirTemp("", "simcache-frame-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	s.dir = dir
	path := filepath.Join(dir, "f")
	if err := s.install(path, payload); err != nil {
		panic(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return raw
}

func TestDamagedEntryPurgesMeta(t *testing.T) {
	s := open(t, 0)
	key, _ := Key("truth", 7)
	if err := s.Put(key, testPayload()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta(key, meta{Kind: "truth"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Get(key, &payload{}) {
		t.Fatal("damaged entry served")
	}
	if s.HasMeta(key) {
		t.Error("meta survived its damaged entry")
	}
}

func TestEvictionRemovesMeta(t *testing.T) {
	s := open(t, 0)
	var keys []string
	for i := 0; i < 4; i++ {
		k, _ := Key("entry", i)
		keys = append(keys, k)
		if err := s.Put(k, testPayload()); err != nil {
			t.Fatal(err)
		}
		if err := s.PutMeta(k, meta{Kind: "truth", MHz: int64(i)}); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	_, total, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	// Four entries fit exactly; the fifth Put overflows by one entry and
	// evicts exactly the oldest.
	s.maxBytes = total
	k, _ := Key("entry", 99)
	if err := s.Put(k, testPayload()); err != nil {
		t.Fatal(err)
	}
	if s.Get(keys[0], &payload{}) {
		t.Fatal("oldest entry not evicted")
	}
	if s.HasMeta(keys[0]) {
		t.Error("evicted entry's meta left behind")
	}
	for _, k := range keys[1:] {
		if !s.HasMeta(k) {
			t.Error("surviving entry lost its meta")
		}
	}
}

func TestKeysSortedLiveEntries(t *testing.T) {
	s := open(t, 0)
	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		k, _ := Key("entry", i)
		if err := s.Put(k, testPayload()); err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}
	// Meta sidecars, temp droppings and foreign files are not entries.
	k, _ := Key("meta-only", 1)
	if err := s.PutMeta(k, meta{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys returned %d entries, want %d", len(keys), len(want))
	}
	for i, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %s", k)
		}
		if i > 0 && keys[i-1] >= k {
			t.Error("keys not sorted")
		}
	}
}
