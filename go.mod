module depburst

go 1.22
