// Predictors: compare every DVFS predictor in the library — M+CRIT, COOP
// and DEP, with and without BURST, plus the per-thread engine variants —
// on one benchmark in both scaling directions, reproducing in miniature
// the paper's Figure 3 comparison.
package main

import (
	"fmt"
	"os"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/report"
	"depburst/internal/units"
)

func main() {
	bench := "xalan"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := dacapo.ByName(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	r := experiments.NewRunner()
	models := []core.Model{
		core.NewMCrit(core.Options{}),
		core.NewMCrit(core.Options{Burst: true}),
		core.NewCOOP(core.Options{}),
		core.NewCOOP(core.Options{Burst: true}),
		core.NewDEP(core.Options{}),
		core.NewDEP(core.Options{Burst: true}),
		core.NewDEP(core.Options{Engine: core.LeadingLoads, Burst: true}),
		core.NewDEP(core.Options{Engine: core.StallTime, Burst: true}),
		core.NewDEP(core.Options{Burst: true, PerEpochCTP: true}),
	}

	type dir struct {
		name         string
		base, target units.Freq
	}
	t := &report.Table{
		Title:  bench + ": all predictors, both directions",
		Header: []string{"model", "1GHz->4GHz", "4GHz->1GHz"},
	}
	for _, m := range models {
		row := []string{m.Name()}
		for _, d := range []dir{{"up", 1000, 4000}, {"down", 4000, 1000}} {
			e := r.PredictionError(spec, m, d.base, d.target)
			row = append(row, report.Pct(e))
		}
		t.AddRow(row...)
	}
	t.Fprint(os.Stdout)
}
