// Percoredvfs: the paper's future-work direction (§VII) — per-core DVFS.
// Runs one benchmark under the chip-wide DEP+BURST energy manager and under
// the independent per-core manager, comparing slowdown and savings, and
// prints each core's frequency residency under per-core control.
package main

import (
	"fmt"
	"os"

	"depburst/internal/dacapo"
	"depburst/internal/energy"
	"depburst/internal/sim"
	"depburst/internal/units"
)

func main() {
	bench := "pmd" // the skewed benchmark: its serial tail idles three cores
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := dacapo.ByName(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	const threshold = 0.10

	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	spec.Configure(&cfg)

	ref, err := sim.New(cfg).Run(dacapo.New(spec))
	if err != nil {
		panic(err)
	}
	fmt.Printf("reference @4GHz: time=%v energy=%v\n\n", ref.Time, ref.Energy)

	chip := sim.New(cfg)
	chip.SetGovernor(energy.NewManager(energy.DefaultManagerConfig(threshold)).Governor())
	cres, err := chip.Run(dacapo.New(spec))
	if err != nil {
		panic(err)
	}
	show("chip-wide DEP+BURST", &ref, &cres)

	pc := sim.New(cfg)
	mg := energy.NewPerCoreManager(energy.DefaultManagerConfig(threshold))
	pc.SetCoreGovernor(mg.Governor())
	pres, err := pc.Run(dacapo.New(spec))
	if err != nil {
		panic(err)
	}
	show("per-core (extension)", &ref, &pres)

	// Per-core frequency residency.
	fmt.Println("per-core residency (fraction of quanta below 2 GHz):")
	low := make([]int, cfg.Cores)
	for _, d := range mg.Decisions {
		for i, f := range d {
			if f < 2000*units.MHz {
				low[i]++
			}
		}
	}
	for i, n := range low {
		fmt.Printf("  core %d: %5.1f%%\n", i, 100*float64(n)/float64(len(mg.Decisions)))
	}
}

func show(name string, ref *sim.Result, res *sim.Result) {
	slow := 100 * (float64(res.Time)/float64(ref.Time) - 1)
	save := 100 * (1 - float64(res.Energy)/float64(ref.Energy))
	fmt.Printf("%-22s time=%v (%+.1f%%)  energy=%v (%.1f%% saved)  transitions=%d\n",
		name, res.Time, slow, res.Energy, save, res.Transitions)
}
