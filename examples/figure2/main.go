// Figure2: an executable version of the paper's Figure 2 — two threads, a
// contended critical section, and the epoch decomposition DEP builds from
// the futex activity.
//
// Thread t0 computes, enters a critical section, and computes again.
// Thread t1 computes (memory-heavily), blocks on the same critical
// section, and computes again after t0 releases it. The run prints the
// recorded synchronization epochs (Figure 2(b)) and then compares M+CRIT's
// naive whole-thread prediction with DEP's epoch-aware one at a higher
// frequency (Figure 2(c)/(d)).
package main

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/experiments"
	"depburst/internal/kernel"
	"depburst/internal/rng"
	"depburst/internal/sim"
	"depburst/internal/trace"
	"depburst/internal/units"
)

type figure2 struct{}

func (figure2) Name() string { return "figure2" }

const (
	computeInstrs = 200_000
	csInstrs      = 120_000
)

func (figure2) Setup(m *sim.Machine) {
	var lock kernel.Mutex
	done := kernel.NewBarrier(3)

	compute := trace.Profile{IPC: 2.0, LoadsPerKI: 2,
		Addr: trace.RandomRegion{Base: 1 << 45, Size: 64 << 10}}
	memory := trace.Profile{IPC: 1.6, LoadsPerKI: 12, DepFrac: 0.4,
		Addr: trace.RandomRegion{Base: 1 << 46, Size: 32 << 20}}

	run := func(e *kernel.Env, r *rng.Source, p trace.Profile, n int64) {
		var blk cpu.Block
		trace.FillBlock(&blk, p, n, r)
		e.Compute(&blk)
	}

	m.Kern.Spawn("main", kernel.ClassApp, -1, func(e *kernel.Env) {
		m.Kern.Spawn("t0", kernel.ClassApp, 0, func(e *kernel.Env) {
			r := m.Rng.Fork(0)
			run(e, r, compute, computeInstrs)
			e.Lock(&lock) // t0 wins the lock (it arrives first)
			run(e, r, compute, csInstrs)
			e.Unlock(&lock)
			run(e, r, compute, computeInstrs)
			e.BarrierWait(done)
		})
		m.Kern.Spawn("t1", kernel.ClassApp, 1, func(e *kernel.Env) {
			r := m.Rng.Fork(1)
			run(e, r, memory, computeInstrs/2) // memory-bound: arrives at the lock later
			e.Lock(&lock)                      // blocks: futex sleep -> epoch boundary
			e.Unlock(&lock)
			run(e, r, memory, computeInstrs/2)
			e.BarrierWait(done)
		})
		e.BarrierWait(done)
	})
}

func main() {
	cfg := sim.DefaultConfig()
	cfg.Freq = 1000 * units.MHz
	base, err := sim.New(cfg).Run(figure2{})
	if err != nil {
		panic(err)
	}

	fmt.Printf("measured at 1 GHz: %v, %d synchronization epochs\n\n", base.Time, len(base.Epochs))
	fmt.Println("epoch decomposition (Figure 2(b)):")
	for i, ep := range base.Epochs {
		fmt.Printf("  epoch %d [%9v .. %9v] ends by %-7v", i, ep.Start, ep.End, ep.EndKind)
		if ep.StallTID != kernel.NoThread {
			fmt.Printf(" (thread %d stalled)", ep.StallTID)
		}
		for _, sl := range ep.Slices {
			fmt.Printf("  t%d: active %v, non-scaling %v", sl.TID, sl.Delta.Active, sl.Delta.CritNS)
		}
		fmt.Println()
	}

	cfg4 := cfg
	cfg4.Freq = 4000 * units.MHz
	actual, err := sim.New(cfg4).Run(figure2{})
	if err != nil {
		panic(err)
	}

	obs := experiments.Observe(&base)
	fmt.Printf("\npredicting 4 GHz (actual %v):\n", actual.Time)
	for _, m := range []core.Model{
		core.NewMCrit(core.Options{}),
		core.NewDEP(core.Options{Burst: true, PerEpochCTP: true}),
		core.NewDEPBurst(),
	} {
		p := m.Predict(obs, 4000*units.MHz)
		fmt.Printf("  %-22s %10v  (%+.1f%%)\n", m.Name(), p,
			100*(float64(p)/float64(actual.Time)-1))
	}
}
