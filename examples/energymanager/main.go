// Energymanager: run a benchmark under the DEP+BURST energy manager and
// show the slowdown/energy trade-off plus the frequency residency the
// governor chose — the paper's §VI case study on one workload.
package main

import (
	"fmt"
	"os"
	"sort"

	"depburst/internal/dacapo"
	"depburst/internal/energy"
	"depburst/internal/sim"
	"depburst/internal/units"
)

func main() {
	bench := "xalan"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := dacapo.ByName(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Reference: always at the maximum frequency.
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000 * units.MHz
	spec.Configure(&cfg)
	ref, err := sim.New(cfg).Run(dacapo.New(spec))
	if err != nil {
		panic(err)
	}
	fmt.Printf("reference @4GHz: time=%v energy=%v\n\n", ref.Time, ref.Energy)

	for _, threshold := range []float64{0.05, 0.10} {
		mg := energy.NewManager(energy.DefaultManagerConfig(threshold))
		m := sim.New(cfg)
		m.SetGovernor(mg.Governor())
		res, err := m.Run(dacapo.New(spec))
		if err != nil {
			panic(err)
		}
		slow := 100 * (float64(res.Time)/float64(ref.Time) - 1)
		save := 100 * (1 - float64(res.Energy)/float64(ref.Energy))
		fmt.Printf("threshold %.0f%%: time=%v (%+.1f%% slowdown) energy=%v (%.1f%% saved), %d transitions\n",
			threshold*100, res.Time, slow, res.Energy, save, res.Transitions)

		// Frequency residency: how much time each chosen state got.
		residency := map[units.Freq]units.Time{}
		for _, s := range res.Samples {
			residency[s.Freq] += s.End - s.Start
		}
		freqs := make([]units.Freq, 0, len(residency))
		for f := range residency {
			freqs = append(freqs, f)
		}
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
		for _, f := range freqs {
			frac := float64(residency[f]) / float64(res.Time)
			if frac < 0.01 {
				continue
			}
			fmt.Printf("  %8v %5.1f%%  %s\n", f, frac*100, bar(frac))
		}
		fmt.Println()
	}
}

func bar(frac float64) string {
	n := int(frac * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
