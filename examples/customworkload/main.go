// Customworkload: build a workload from scratch against the library's
// primitives — kernel threads, futex-backed mutexes/barriers, managed
// allocation, and trace profiles — then measure its DVFS scaling and
// predict it with DEP+BURST.
//
// The workload is a two-stage pipeline: producers parse "documents"
// (allocation-heavy, memory-bound) into a bounded queue; consumers index
// them (compute-bound) with a shared dictionary lock. This is the kind of
// application structure no whole-run model predicts well, because the
// critical thread alternates between stages.
package main

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/jvm"
	"depburst/internal/kernel"
	"depburst/internal/sim"
	"depburst/internal/trace"
	"depburst/internal/units"
)

const (
	docs        = 600
	queueCap    = 8
	parseInstrs = 24_000
	indexInstrs = 30_000
)

type pipeline struct{}

func (pipeline) Name() string { return "pipeline" }

func (pipeline) Setup(m *sim.Machine) {
	m.Kern.Spawn("main", kernel.ClassApp, -1, func(e *kernel.Env) {
		var (
			mu       kernel.Mutex
			notFull  kernel.Cond
			notEmpty kernel.Cond
			dict     kernel.Mutex
		)
		queued, produced, consumed := 0, 0, 0
		done := kernel.NewBarrier(5) // 2 producers + 2 consumers + main

		parseProf := trace.Profile{
			IPC: 1.8, LoadsPerKI: 11, StoresPerKI: 4, DepFrac: 0.2,
			Addr: trace.RandomRegion{Base: jvm.HeapTop, Size: 6 << 20},
		}
		indexProf := trace.Profile{
			IPC: 2.6, LoadsPerKI: 10, DepFrac: 0.05,
			Addr: trace.RandomRegion{Base: jvm.HeapTop + 1<<30, Size: 192 << 10},
		}

		for p := 0; p < 2; p++ {
			id := p
			m.Kern.Spawn("producer", kernel.ClassApp, -1, func(e *kernel.Env) {
				r := m.Rng.Fork(uint64(100 + id))
				tl := &jvm.TLAB{}
				var blk cpu.Block
				for {
					e.Lock(&mu)
					if produced == docs {
						e.Unlock(&mu)
						break
					}
					produced++
					e.Unlock(&mu)

					m.JVM.Safepoint(e)
					trace.FillBlock(&blk, parseProf, parseInstrs, r)
					e.Compute(&blk)
					m.JVM.Alloc(e, tl, 20_000)

					e.Lock(&mu)
					for queued == queueCap {
						e.CondWait(&notFull, &mu)
					}
					queued++
					e.CondSignal(&notEmpty)
					e.Unlock(&mu)
				}
				e.BarrierWait(done)
			})
		}

		for c := 0; c < 2; c++ {
			id := c
			m.Kern.Spawn("consumer", kernel.ClassApp, -1, func(e *kernel.Env) {
				r := m.Rng.Fork(uint64(200 + id))
				var blk cpu.Block
				for {
					e.Lock(&mu)
					for queued == 0 && consumed < docs {
						e.CondWait(&notEmpty, &mu)
					}
					if consumed == docs {
						e.Unlock(&mu)
						break
					}
					queued--
					consumed++
					last := consumed == docs
					e.CondSignal(&notFull)
					if last {
						e.CondBroadcast(&notEmpty)
					}
					e.Unlock(&mu)

					m.JVM.Safepoint(e)
					trace.FillBlock(&blk, indexProf, indexInstrs, r)
					e.Compute(&blk)

					e.Lock(&dict)
					trace.FillBlock(&blk, indexProf, 1_500, r)
					e.Compute(&blk)
					e.Unlock(&dict)
				}
				e.BarrierWait(done)
			})
		}
		e.BarrierWait(done)
	})
}

func main() {
	cfg := sim.DefaultConfig()
	results := map[units.Freq]sim.Result{}
	for _, f := range []units.Freq{1000, 2000, 3000, 4000} {
		c := cfg
		c.Freq = f
		res, err := sim.New(c).Run(pipeline{})
		if err != nil {
			panic(err)
		}
		results[f] = res
		fmt.Printf("measured @%v: %v  (%d epochs, %d GCs, energy %v)\n",
			f, res.Time, len(res.Epochs), res.GC.MinorGCs, res.Energy)
	}

	base := results[1000]
	obs := experiments.Observe(&base)
	fmt.Println()
	for _, m := range []core.Model{core.NewMCrit(core.Options{}), core.NewDEPBurst()} {
		for _, f := range []units.Freq{2000, 3000, 4000} {
			pred := m.Predict(obs, f)
			actual := results[f].Time
			fmt.Printf("%-12s @%v: predicted %v, actual %v (%+.1f%%)\n",
				m.Name(), f, pred, actual, 100*(float64(pred)/float64(actual)-1))
		}
	}
	_ = dacapo.Suite // the stock benchmarks live in internal/dacapo
}
