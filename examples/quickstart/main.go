// Quickstart: run one benchmark on the simulated machine at 1 GHz, then
// predict its execution time at 4 GHz with DEP+BURST and compare against a
// real 4 GHz run.
package main

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/sim"
	"depburst/internal/units"
)

func main() {
	spec, err := dacapo.ByName("lusearch")
	if err != nil {
		panic(err)
	}

	// Run the benchmark at the 1 GHz base frequency.
	cfg := sim.DefaultConfig()
	cfg.Freq = 1000 * units.MHz
	spec.Configure(&cfg)
	base, err := sim.New(cfg).Run(dacapo.New(spec))
	if err != nil {
		panic(err)
	}
	fmt.Printf("measured at %v: %v (%d synchronization epochs, %d GCs)\n",
		base.Freq, base.Time, len(base.Epochs), base.GC.MinorGCs+base.GC.MajorGCs)

	// Predict 4 GHz from the 1 GHz observation.
	model := core.NewDEPBurst()
	obs := experiments.Observe(&base)
	predicted := model.Predict(obs, 4000*units.MHz)
	fmt.Printf("%s predicts at 4 GHz: %v\n", model.Name(), predicted)

	// Check against ground truth.
	cfg.Freq = 4000 * units.MHz
	actual, err := sim.New(cfg).Run(dacapo.New(spec))
	if err != nil {
		panic(err)
	}
	errPct := 100 * (float64(predicted)/float64(actual.Time) - 1)
	fmt.Printf("measured at 4 GHz: %v (prediction error %+.1f%%)\n", actual.Time, errPct)
}
